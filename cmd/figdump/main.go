// Command figdump prints the headline figure series (Fig 10, 11, 13 and
// the Fig 15 diurnal summary) at full float64 precision (%.17g), one line
// per data point, to the file given as its argument (or stdout with "-").
//
// Its purpose is the simulator's bit-identity contract: any change to the
// event scheduler or packet pipeline must leave every figure untouched, so
// perf PRs dump the series before and after and diff the files:
//
//	go run ./cmd/figdump before.txt
//	<make the change>
//	go run ./cmd/figdump after.txt
//	diff before.txt after.txt   # must be empty
//
// The same contract covers the pod-sharded parallel engine: figdump output
// is identical for every -shards value (Fig 13/15 are planner-model
// computations with no packet simulation, so only Fig 10/11 exercise it):
//
//	go run ./cmd/figdump -shards 1 a.txt
//	go run ./cmd/figdump -shards 4 b.txt
//	diff a.txt b.txt            # must be empty
//
// The sweep shapes are deliberately small (the benchmark configurations,
// a few seconds of CPU) — this is a regression tripwire, not a paper
// reproduction; use cmd/netsweep and cmd/joint for the full figures.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"eprons/internal/experiments"
)

func dump(w io.Writer, shards int, fluid bool) error {
	cfg := experiments.NetLatencyConfig{DurationS: 1.5, Shards: shards, Fluid: fluid}
	rows10, err := experiments.Fig10AggregationLatency([]int{0, 3}, []float64{0.20}, cfg)
	if err != nil {
		return err
	}
	for _, r := range rows10 {
		fmt.Fprintf(w, "fig10 %d %.17g %.17g %.17g %.17g %d\n", r.Level, r.BgUtil, r.MeanS, r.P95S, r.P99S, r.Dropped)
	}
	rows11, err := experiments.Fig11ScaleFactor([]int{1, 4}, []float64{0.30}, cfg)
	if err != nil {
		return err
	}
	for _, r := range rows11 {
		fmt.Fprintf(w, "fig11 %d %.17g %.17g %d %v\n", r.K, r.BgUtil, r.P95S, r.ActiveSwitches, r.Feasible)
	}
	eprons, tt, mf, err := experiments.TrainTables(true)
	if err != nil {
		return err
	}
	rows13, err := experiments.Fig13JointPower(eprons, []float64{0.20}, []float64{19e-3, 31e-3, 40e-3})
	if err != nil {
		return err
	}
	for _, r := range rows13 {
		fmt.Fprintf(w, "fig13 %d %.17g %.17g %v\n", r.Level, r.ConstraintS, r.TotalW, r.Feasible)
	}
	sum, err := experiments.Fig15Diurnal(eprons, tt, mf, 60)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fig15 %.17g %.17g %.17g\n", sum.EPRONSAvgSaving, sum.EPRONSPeakSaving, sum.TTAvgSaving)
	return nil
}

func main() {
	shards := flag.Int("shards", 1, "pod shards for the packet simulations (1 = sequential engine; output is identical for every value)")
	fluid := flag.Bool("fluid", false, "hybrid fluid/packet background engine for the packet simulations")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: figdump [-shards n] [-fluid] <out-file|->")
		os.Exit(2)
	}
	var w io.Writer = os.Stdout
	if flag.Arg(0) != "-" {
		f, err := os.Create(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "figdump:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := dump(w, *shards, *fluid); err != nil {
		fmt.Fprintln(os.Stderr, "figdump:", err)
		os.Exit(1)
	}
}

// Command benchcmp compares two `go test -bench` output files and prints
// benchstat-style delta tables for ns/op, B/op and allocs/op — stdlib only,
// no external benchstat dependency. Repeated samples per benchmark (from
// -count) are averaged and the max deviation from the mean is shown as the
// ± column, so noisy comparisons are visible at a glance.
//
//	go test -bench . -benchmem -count 5 ./... > old.txt
//	<make the change>
//	go test -bench . -benchmem -count 5 ./... > new.txt
//	go run ./cmd/benchcmp old.txt new.txt
//
// `make benchcmp` wires this up: it runs the tier-1 bench suite twice and
// compares the two runs (a noise-floor check); pass OLD=/NEW= files to
// compare recorded runs instead.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"eprons/internal/benchparse"
)

func load(path string) (map[string]benchparse.Summary, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	results, err := benchparse.Parse(f)
	if err != nil {
		return nil, nil, err
	}
	byName := map[string]benchparse.Summary{}
	var order []string
	for _, s := range benchparse.Summarize(results) {
		byName[s.Name] = s
		order = append(order, s.Name)
	}
	return byName, order, nil
}

func delta(old, new benchparse.Stat) string {
	if !old.Known || !new.Known {
		return "-"
	}
	if old.Mean == 0 {
		if new.Mean == 0 {
			return "0.00%"
		}
		return "+inf"
	}
	return fmt.Sprintf("%+.2f%%", (new.Mean-old.Mean)/old.Mean*100)
}

func section(w *tabwriter.Writer, title string, order []string, olds, news map[string]benchparse.Summary,
	get func(benchparse.Summary) benchparse.Stat) {
	fmt.Fprintf(w, "name\told %s\tnew %s\tdelta\n", title, title)
	printed := false
	for _, name := range order {
		o, okO := olds[name]
		n, okN := news[name]
		if !okO || !okN {
			continue
		}
		so, sn := get(o), get(n)
		if !so.Known && !sn.Known {
			continue
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", name, so, sn, delta(so, sn))
		printed = true
	}
	if !printed {
		fmt.Fprintln(w, "(no common benchmarks)\t\t\t")
	}
	fmt.Fprintln(w, "\t\t\t")
}

func run() error {
	if len(os.Args) != 3 {
		return fmt.Errorf("usage: benchcmp <old.txt> <new.txt>")
	}
	olds, order, err := load(os.Args[1])
	if err != nil {
		return err
	}
	news, _, err := load(os.Args[2])
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	section(w, "ns/op", order, olds, news, func(s benchparse.Summary) benchparse.Stat { return s.NsPerOp })
	section(w, "B/op", order, olds, news, func(s benchparse.Summary) benchparse.Stat { return s.BytesPerOp })
	section(w, "allocs/op", order, olds, news, func(s benchparse.Summary) benchparse.Stat { return s.AllocsPerOp })
	return w.Flush()
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

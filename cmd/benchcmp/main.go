// Command benchcmp compares two benchmark runs and prints benchstat-style
// delta tables for ns/op, B/op and allocs/op — stdlib only, no external
// benchstat dependency. Inputs may be raw `go test -bench` output files or
// BENCH_<n>.json snapshots written by cmd/benchjson (detected by content),
// so a live run can be compared directly against the recorded perf
// trajectory. Repeated samples per benchmark (from -count) are averaged
// and the max deviation from the mean is shown as the ± column; each table
// ends with a geomean row (geometric mean of the per-benchmark new/old
// ratios over the common set).
//
//	go test -bench . -benchmem -count 5 ./... > old.txt
//	<make the change>
//	go test -bench . -benchmem -count 5 ./... > new.txt
//	go run ./cmd/benchcmp old.txt new.txt
//
// With -guard, memory regressions fail the run: any common benchmark whose
// B/op or allocs/op grew by more than -threshold percent (default 10) is
// reported and the exit status is 2 — the `make benchguard` gate, which
// compares a fresh tier-1 bench run against the latest BENCH_<n>.json.
// ns/op is deliberately exempt: wall time is too machine-sensitive for a
// hard gate, while allocation counts are deterministic and bytes nearly so.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	"eprons/internal/benchparse"
)

// snapshot mirrors cmd/benchjson's output schema.
type snapshot struct {
	Date    string `json:"date"`
	Results []struct {
		Name        string  `json:"name"`
		Samples     int     `json:"samples"`
		NsPerOp     float64 `json:"ns_per_op"`
		BytesPerOp  float64 `json:"b_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"results"`
}

// load reads a benchmark run from either raw `go test -bench` output or a
// benchjson snapshot, keyed by benchmark name in first-seen order.
func load(path string) (map[string]benchparse.Summary, []string, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	byName := map[string]benchparse.Summary{}
	var order []string
	add := func(s benchparse.Summary) {
		byName[s.Name] = s
		order = append(order, s.Name)
	}
	if trimmed := bytes.TrimSpace(buf); len(trimmed) > 0 && trimmed[0] == '{' {
		var snap snapshot
		if err := json.Unmarshal(buf, &snap); err != nil {
			return nil, nil, fmt.Errorf("%s: %v", path, err)
		}
		for _, r := range snap.Results {
			add(benchparse.Summary{
				Name:        r.Name,
				Samples:     r.Samples,
				NsPerOp:     benchparse.Stat{Mean: r.NsPerOp, Known: true},
				BytesPerOp:  benchparse.Stat{Mean: r.BytesPerOp, Known: true},
				AllocsPerOp: benchparse.Stat{Mean: r.AllocsPerOp, Known: true},
			})
		}
		return byName, order, nil
	}
	results, err := benchparse.Parse(bytes.NewReader(buf))
	if err != nil {
		return nil, nil, err
	}
	for _, s := range benchparse.Summarize(results) {
		add(s)
	}
	return byName, order, nil
}

func delta(old, new benchparse.Stat) string {
	if !old.Known || !new.Known {
		return "-"
	}
	if old.Mean == 0 {
		if new.Mean == 0 {
			return "0.00%"
		}
		return "+inf"
	}
	return fmt.Sprintf("%+.2f%%", (new.Mean-old.Mean)/old.Mean*100)
}

// regression is one guarded metric that grew past the threshold.
type regression struct {
	name, metric string
	pct          float64
}

// section prints one metric's delta table (with a trailing geomean row)
// and returns the per-benchmark growth percentages for the guard.
func section(w *tabwriter.Writer, title string, order []string, olds, news map[string]benchparse.Summary,
	get func(benchparse.Summary) benchparse.Stat) map[string]float64 {
	fmt.Fprintf(w, "name\told %s\tnew %s\tdelta\n", title, title)
	growth := map[string]float64{}
	logSum, logN := 0.0, 0
	printed := false
	for _, name := range order {
		o, okO := olds[name]
		n, okN := news[name]
		if !okO || !okN {
			continue
		}
		so, sn := get(o), get(n)
		if !so.Known && !sn.Known {
			continue
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", name, so, sn, delta(so, sn))
		printed = true
		if so.Known && sn.Known && so.Mean > 0 {
			growth[name] = (sn.Mean - so.Mean) / so.Mean * 100
			if sn.Mean > 0 {
				logSum += math.Log(sn.Mean / so.Mean)
				logN++
			}
		} else if so.Known && sn.Known && so.Mean == 0 && sn.Mean > 0 {
			growth[name] = math.Inf(1)
		}
	}
	switch {
	case !printed:
		fmt.Fprintln(w, "(no common benchmarks)\t\t\t")
	case logN > 0:
		fmt.Fprintf(w, "geomean\t\t\t%+.2f%%\n", (math.Exp(logSum/float64(logN))-1)*100)
	}
	fmt.Fprintln(w, "\t\t\t")
	return growth
}

func run() error {
	guard := flag.Bool("guard", false, "exit 2 when B/op or allocs/op regress past -threshold")
	threshold := flag.Float64("threshold", 10, "guarded regression threshold, percent")
	flag.Parse()
	if flag.NArg() != 2 {
		return fmt.Errorf("usage: benchcmp [-guard] [-threshold pct] <old> <new>")
	}
	olds, order, err := load(flag.Arg(0))
	if err != nil {
		return err
	}
	news, _, err := load(flag.Arg(1))
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	section(w, "ns/op", order, olds, news, func(s benchparse.Summary) benchparse.Stat { return s.NsPerOp })
	bGrowth := section(w, "B/op", order, olds, news, func(s benchparse.Summary) benchparse.Stat { return s.BytesPerOp })
	aGrowth := section(w, "allocs/op", order, olds, news, func(s benchparse.Summary) benchparse.Stat { return s.AllocsPerOp })
	if err := w.Flush(); err != nil {
		return err
	}
	if !*guard {
		return nil
	}
	var regs []regression
	for _, name := range order {
		if pct, ok := bGrowth[name]; ok && pct > *threshold {
			regs = append(regs, regression{name, "B/op", pct})
		}
		if pct, ok := aGrowth[name]; ok && pct > *threshold {
			regs = append(regs, regression{name, "allocs/op", pct})
		}
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "benchcmp: REGRESSION %s %s %+.2f%% (threshold %.0f%%)\n", r.name, r.metric, r.pct, *threshold)
		}
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchcmp: guard ok (no B/op or allocs/op regression > %.0f%%)\n", *threshold)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

// Command netsweep regenerates the network-side evaluation: Fig 10
// (query network latency vs aggregation policy × background traffic) and
// Fig 11 (scale factor K vs tail latency and active switches).
//
// Usage:
//
//	netsweep [-fig 10|11|all] [-duration 3] [-rate 40] [-workers N] [-k 4] [-fluid]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"

	"eprons/internal/experiments"
	"eprons/internal/parallel"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 10, 11 or all")
	duration := flag.Float64("duration", 3, "simulated seconds per configuration")
	rate := flag.Float64("rate", 40, "query rate (queries/s)")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", parallel.DefaultWorkers(), "sweep concurrency (grid cells are independent simulations; <=1 runs sequentially, results are identical either way)")
	csvOut := flag.Bool("csv", false, "emit tables as CSV")
	kArity := flag.Int("k", 4, "fat-tree arity (8 for the large-fabric sweep; background flows grow as k^2)")
	fluid := flag.Bool("fluid", false, "hybrid fluid/packet background engine: fold uncongested background elephants into analytic link reservations (order-of-magnitude fewer events; off = bit-identical packet-level simulation)")
	shards := flag.Int("shards", 1, "pod shards per packet simulation (conservative lockstep windows; figures are bit-identical for every value; 1 = sequential engine, -1 = one shard per available core, capped at k)")
	flag.Parse()
	cfg := experiments.NetLatencyConfig{DurationS: *duration, QueryRate: *rate, Seed: *seed, Workers: *workers, K: *kArity, Fluid: *fluid, Shards: *shards}

	if *fig == "10" || *fig == "all" {
		rows, err := experiments.Fig10AggregationLatency(
			[]int{0, 1, 2, 3},
			[]float64{0.05, 0.10, 0.20, 0.30},
			cfg)
		if err != nil {
			log.Fatal(err)
		}
		t := &experiments.Table{
			Title:   "Fig 10 — query network latency vs aggregation policy and background traffic",
			Headers: []string{"aggregation", "background", "mean(µs)", "p95(µs)", "p99(µs)"},
		}
		for _, r := range rows {
			t.AddRow(strconv.Itoa(r.Level), experiments.Pct(r.BgUtil),
				experiments.Us(r.MeanS), experiments.Us(r.P95S), experiments.Us(r.P99S))
		}
		fmt.Print(experiments.Render(t, *csvOut))
		fmt.Println()
	}

	if *fig == "11" || *fig == "all" {
		rows, err := experiments.Fig11ScaleFactor(
			[]int{1, 2, 3, 4, 5, 6},
			[]float64{0.05, 0.10, 0.20, 0.30},
			cfg)
		if err != nil {
			log.Fatal(err)
		}
		t := &experiments.Table{
			Title:   "Fig 11 — scale factor K vs network tail latency and active switches",
			Headers: []string{"background", "K", "p95(µs)", "active switches", "feasible"},
		}
		for _, r := range rows {
			t.AddRow(experiments.Pct(r.BgUtil), strconv.Itoa(r.K),
				experiments.Us(r.P95S), strconv.Itoa(r.ActiveSwitches),
				strconv.FormatBool(r.Feasible))
		}
		fmt.Print(experiments.Render(t, *csvOut))
	}
}

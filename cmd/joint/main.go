// Command joint regenerates Fig 13: total system power vs request
// tail-latency constraint for each aggregation policy, at low/medium/high
// background traffic and 30% server utilization. It first trains the
// server power table (the §IV-A parameterization), then evaluates the
// joint model — like the paper, the system-level results are scaled
// through models trained from simulation.
//
// Usage:
//
//	joint [-quick] [-bg 0.01,0.20,0.50]
//	joint -twin [-twink 74] [-bg 0.01,0.20,0.50]
//	joint -twincheck [-quick]
//	joint -faults [-faultrates 0,0.5,1,2] [-faultdur 5] [-faultseed 1] [-audit] [-fluid]
//	joint -overload [-overloadmults 0.5,1,2,3] [-overloaddur 2] [-surge step] [-audit] [-fluid]
//	joint -replicas 1,3 [-selection primary,p2c,hedged] [-hedge 0] [-faultrates 0,1,2] [-audit]
//
// The -faults mode skips the Fig 13 evaluation and instead runs the
// fault-injection availability sweep: seeded switch crashes and link
// flaps against the consolidated fabric, with controller route repair and
// aggregator sub-query retry.
//
// The -overload mode runs the flash-crowd overload sweep: admission
// control + load shedding + controller surge response versus the
// unprotected baseline across offered-load multipliers.
//
// The -replicas mode runs the replicated search-tier sweep: consistent-
// hash placement with pod spreading, replica failover, and the selection
// policies of -selection (primary, p2c, hedged) compared across
// replication factors and fault rates; -hedge overrides the hedged
// duplicate delay (0 tracks the observed sub-query p95). -audit enables
// runtime invariant checks in all three modes.
//
// The -twin mode answers closed-form what-if capacity queries on an
// arbitrary fat-tree arity (default k=74, a 101,306-host fabric) with no
// simulation at all; -twincheck validates the closed forms against the
// DES on the Fig 10 grid and the trained server table, failing when an
// in-domain cell breaks the pinned error bands.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"eprons/internal/cluster"
	"eprons/internal/experiments"
	"eprons/internal/parallel"
	"eprons/internal/workload"
)

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseSelections(s string) ([]cluster.SelectionPolicy, error) {
	var out []cluster.SelectionPolicy
	for _, part := range strings.Split(s, ",") {
		sel, err := cluster.ParseSelection(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, sel)
	}
	return out, nil
}

func main() {
	quick := flag.Bool("quick", false, "small training grid (faster, coarser)")
	bgArg := flag.String("bg", "0.01,0.20,0.50", "background utilizations (fractions)")
	netScale := flag.Float64("netscale", 25, "network-latency calibration: 25 matches the paper's MiniNet magnitudes, 1 = clean simulator")
	faultsMode := flag.Bool("faults", false, "run the fault-injection availability experiment and exit")
	faultRates := flag.String("faultrates", "0,0.5,1,2", "fault rates to sweep (total fail events/s, split between switch crashes and link flaps)")
	faultDur := flag.Float64("faultdur", 5, "seconds of traffic and fault injection per rate")
	faultSeed := flag.Int64("faultseed", 1, "seed for the fault schedule and workload streams")
	overloadMode := flag.Bool("overload", false, "run the flash-crowd overload experiment and exit")
	overloadMults := flag.String("overloadmults", "0.5,1,2,3", "offered-load multipliers to sweep (x base rate; >1 arrives as a flash crowd)")
	overloadDur := flag.Float64("overloaddur", 2, "seconds of query traffic per multiplier cell")
	overloadRate := flag.Float64("overloadrate", 200, "base (1x) query rate in queries/s")
	overloadSeed := flag.Int64("overloadseed", 1, "seed for the overload workload streams")
	surgeShape := flag.String("surge", "step", "flash-crowd profile: step, spike or ramp")
	surgeResponse := flag.Bool("surgeresponse", true, "let the controller re-expand the fabric on sustained saturation")
	replicasArg := flag.String("replicas", "", "run the replicated search-tier sweep over these replication factors (e.g. 1,3) and exit; uses -faultrates/-faultdur/-faultseed for the fault axis")
	selectionArg := flag.String("selection", "primary", "replica selection policies to sweep: primary, p2c and/or hedged (comma separated)")
	hedgeDelay := flag.Float64("hedge", 0, "hedged-policy duplicate delay in seconds (0 = track the observed sub-query p95)")
	audit := flag.Bool("audit", false, "run runtime invariant checks (query conservation, offered>=carried bytes, hedge accounting, replica reachability, scheduler bookkeeping) after each cell")
	fluid := flag.Bool("fluid", false, "hybrid fluid/packet background-traffic engine in -faults/-overload modes (order-of-magnitude fewer events; off = exact packet-level simulation)")
	workers := flag.Int("workers", parallel.DefaultWorkers(), "training/evaluation concurrency (cells are independently seeded simulations; <=1 runs sequentially, results are identical either way)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	shards := flag.Int("shards", 1, "pod shards per packet simulation (conservative lockstep windows). The planner figures involve no packet simulation, and -faults/-overload need retries and admission control, which the sharded cluster envelope excludes — so any value other than 1 is rejected in those modes")
	twinMode := flag.Bool("twin", false, "answer closed-form what-if capacity queries on a -twink fabric and exit (no simulation, no topology graph)")
	twinK := flag.Int("twink", 74, "fat-tree arity for -twin (74 = 101,306 hosts)")
	twinCheck := flag.Bool("twincheck", false, "validate the closed-form twin against the DES on the Fig 10 grid and the trained server table, then exit (non-zero when an in-domain cell breaks the pinned error bands)")
	csvOut := flag.Bool("csv", false, "emit tables as CSV")
	flag.Parse()

	if *shards != 1 && *shards != 0 {
		// The sharded engine requires the no-drop, no-retry broadcast
		// envelope (cluster.ErrShardEnvelope names the offending option);
		// the fault, overload and replica experiments are defined by
		// violating it, and the planner figures (Fig 13/15) run no packet
		// simulation at all. Reject rather than silently ignore.
		log.Fatal("-shards is only meaningful for the packet-level figure sweeps (timeouts, retries, admission control and replication are outside the sharded cluster envelope); use cmd/netsweep -shards or cmd/reproduce -shards")
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *twinMode {
		bgs, err := parseFloats(*bgArg)
		if err != nil {
			log.Fatal(err)
		}
		t, _, err := experiments.TwinCapacityTable(*twinK, bgs, 0.30)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.Render(t, *csvOut))
		fmt.Println("\nerror bands (validated against the DES on the k=4 Fig 10 grid, see `joint -twincheck`):")
		fmt.Println("  network p95: twin within 0.6x relative error in-domain (consistently optimistic);")
		fmt.Println("  server power: within 0.45x relative error (consistently conservative).")
		fmt.Println("rows marked CLAMPED are outside the validated domain — the bands do not apply there.")
		return
	}

	if *twinCheck {
		sum, err := experiments.TwinCheck(experiments.TwinCheckConfig{
			Quick:   *quick,
			Workers: *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.Render(experiments.TwinCheckTable(sum), *csvOut))
		fmt.Printf("\nin-domain cells %d (net max rel err %.1f%%, server max rel err %.1f%%); out-of-domain cells flagged: %d; feasibility disagreements: %d\n",
			sum.InDomain, sum.NetMaxRel*100, sum.ServerMaxRel*100, sum.Clamped, sum.Disagree)
		if sum.NetMaxRel > experiments.TwinNetRelBand || sum.ServerMaxRel > experiments.TwinServerRelBand {
			log.Fatal("twincheck: in-domain error bands violated")
		}
		return
	}

	if *replicasArg != "" {
		replicas, err := parseInts(*replicasArg)
		if err != nil {
			log.Fatal(err)
		}
		selections, err := parseSelections(*selectionArg)
		if err != nil {
			log.Fatal(err)
		}
		rates, err := parseFloats(*faultRates)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := experiments.ReplicaSweep(replicas, selections, rates, experiments.ReplicaConfig{
			DurationS:   *faultDur,
			HedgeDelayS: *hedgeDelay,
			Seed:        *faultSeed,
			Workers:     *workers,
			Audit:       *audit,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.Render(experiments.ReplicaTable(rows), *csvOut))
		return
	}

	if *faultsMode {
		rates, err := parseFloats(*faultRates)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := experiments.AvailabilitySweep(rates, experiments.AvailabilityConfig{
			DurationS: *faultDur,
			Seed:      *faultSeed,
			Workers:   *workers,
			Audit:     *audit,
			Fluid:     *fluid,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.Render(experiments.AvailabilityTable(rows), *csvOut))
		return
	}

	if *overloadMode {
		mults, err := parseFloats(*overloadMults)
		if err != nil {
			log.Fatal(err)
		}
		profile, err := workload.ParseSurgeProfile(*surgeShape)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := experiments.OverloadSweep(mults, experiments.OverloadConfig{
			DurationS:     *overloadDur,
			BaseRate:      *overloadRate,
			Profile:       profile,
			SurgeResponse: *surgeResponse,
			Audit:         *audit,
			Fluid:         *fluid,
			Seed:          *overloadSeed,
			Workers:       *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.Render(experiments.OverloadTable(rows), *csvOut))
		return
	}

	bgs, err := parseFloats(*bgArg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training EPRONS server power table…")
	eprons, _, _, err := experiments.TrainTablesWorkers(*quick, *workers)
	if err != nil {
		log.Fatal(err)
	}

	constraints := []float64{19e-3, 22e-3, 25e-3, 28e-3, 31e-3, 34e-3, 37e-3, 40e-3}
	rows, err := experiments.Fig13JointPowerScaled(eprons, bgs, constraints, *netScale, *workers)
	if err != nil {
		log.Fatal(err)
	}
	for _, bg := range bgs {
		t := &experiments.Table{
			Title:   fmt.Sprintf("Fig 13 — total system power at %s background traffic (30%% server utilization)", experiments.Pct(bg)),
			Headers: []string{"constraint(ms)", "agg 0", "agg 1", "agg 2", "agg 3"},
		}
		for _, c := range constraints {
			cells := []string{experiments.Ms(c)}
			for level := 0; level < 4; level++ {
				cell := "—"
				for _, r := range rows {
					if r.BgUtil == bg && r.Level == level && r.ConstraintS == c {
						if r.Feasible {
							cell = experiments.W(r.TotalW)
						} else {
							cell = "infeasible"
						}
					}
				}
				cells = append(cells, cell)
			}
			t.AddRow(cells...)
		}
		fmt.Print(experiments.Render(t, *csvOut))
		fmt.Println()
	}
}

// Command reproduce is the artifact-evaluation entry point: it regenerates
// every figure of the paper's evaluation in one run, writes each as a CSV
// under -out, and prints a pass/fail summary of the headline shape checks.
//
// Usage:
//
//	reproduce [-out results] [-quick] [-fluid]
//
// -quick (default true) uses the coarse training grids; -quick=false runs
// the full 12-core configuration the EXPERIMENTS.md numbers come from
// (several minutes). -fluid runs the packet simulations (Fig 10/11) with
// the hybrid fluid/packet background engine — much faster, tails within
// the pinned tolerance; off keeps the bit-identical packet-only engine.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"eprons/internal/experiments"
	"eprons/internal/parallel"
)

var outDir string

func writeCSV(name string, t *experiments.Table) {
	path := filepath.Join(outDir, name+".csv")
	if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
		log.Fatalf("write %s: %v", path, err)
	}
	fmt.Printf("  wrote %s (%d rows)\n", path, len(t.Rows))
}

type check struct {
	name string
	ok   bool
	note string
}

func main() {
	out := flag.String("out", "results", "output directory for CSV files")
	quick := flag.Bool("quick", true, "coarse grids (fast); -quick=false reproduces EXPERIMENTS.md exactly")
	workers := flag.Int("workers", parallel.DefaultWorkers(), "sweep/training concurrency (<=1 runs sequentially, figures are identical either way)")
	fluid := flag.Bool("fluid", false, "hybrid fluid/packet background engine for the packet simulations (order-of-magnitude fewer events; off = bit-identical packet-level figures)")
	shards := flag.Int("shards", 1, "pod shards per packet simulation (conservative lockstep windows; figures are bit-identical for every value; 1 = sequential engine, -1 = one shard per available core)")
	flag.Parse()
	outDir = *out
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	var checks []check
	add := func(name string, ok bool, note string) {
		checks = append(checks, check{name, ok, note})
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		fmt.Printf("[%s] %s — %s\n", status, name, note)
	}

	dur := 1.5
	serverDur := 10.0
	if !*quick {
		dur, serverDur = 3, 30
	}

	// Fig 1.
	fmt.Println("Fig 1: utilization-latency knee")
	knee, err := experiments.Fig01Knee([]float64{0.05, 0.20, 0.50, 0.80, 0.90, 0.95}, dur+2, 1)
	if err != nil {
		log.Fatal(err)
	}
	t := &experiments.Table{Title: "Fig 1", Headers: []string{"util", "mean_s", "p95_s", "p99_s"}}
	for _, p := range knee {
		t.AddRow(experiments.F(p.Utilization), experiments.F(p.MeanS), experiments.F(p.P95S), experiments.F(p.P99S))
	}
	writeCSV("fig01_knee", t)
	add("fig01 knee", knee[5].MeanS > 3*knee[1].MeanS, fmt.Sprintf("95%% util latency %.1fx the 20%% latency", knee[5].MeanS/knee[1].MeanS))

	// Fig 2.
	fmt.Println("Fig 2: scale factor example")
	rows2, _, _, err := experiments.Fig02ScaleDemo()
	if err != nil {
		log.Fatal(err)
	}
	t = &experiments.Table{Title: "Fig 2", Headers: []string{"K", "switches", "sharing"}}
	for _, r := range rows2 {
		t.AddRow(experiments.F(r.K), strconv.Itoa(r.ActiveSwitches), strconv.Itoa(r.SharedWithBig))
	}
	writeCSV("fig02_scalefactor", t)
	add("fig02 sharing 2→1→0", rows2[0].SharedWithBig == 2 && rows2[1].SharedWithBig == 1 && rows2[2].SharedWithBig == 0, "K moves sensitive flows off the elephant")

	// Fig 4/5.
	pts4, fMax, fAvg, err := experiments.Fig04ViolationCurves(12e-3, 18e-3)
	if err != nil {
		log.Fatal(err)
	}
	t = &experiments.Table{Title: "Fig 4", Headers: []string{"freq_ghz", "vp_r1", "vp_r2e", "vp_avg"}}
	for _, p := range pts4 {
		t.AddRow(experiments.F(p.FreqGHz), experiments.F(p.VPR1), experiments.F(p.VPR2e), experiments.F(p.AvgVP))
	}
	writeCSV("fig04_vp_curves", t)
	add("fig04 avg-VP below max-VP", fAvg <= fMax, fmt.Sprintf("EPRONS %.1f GHz vs prior work %.1f GHz", fAvg, fMax))

	// Fig 9.
	rows9, err := experiments.Fig09Policies()
	if err != nil {
		log.Fatal(err)
	}
	t = &experiments.Table{Title: "Fig 9", Headers: []string{"level", "switches", "links", "power_w"}}
	for _, r := range rows9 {
		t.AddRow(strconv.Itoa(r.Level), strconv.Itoa(r.ActiveSwitches), strconv.Itoa(r.ActiveLinks), experiments.F(r.NetworkPowerW))
	}
	writeCSV("fig09_policies", t)
	add("fig09 monotone policies", rows9[0].ActiveSwitches == 20 && rows9[3].ActiveSwitches == 13, "20→13 switches, all connected")

	// Fig 10.
	fmt.Println("Fig 10: aggregation latency (packet simulation)")
	cfgNet := experiments.NetLatencyConfig{DurationS: dur, Workers: *workers, Fluid: *fluid, Shards: *shards}
	rows10, err := experiments.Fig10AggregationLatency([]int{0, 1, 2, 3}, []float64{0.05, 0.20, 0.30}, cfgNet)
	if err != nil {
		log.Fatal(err)
	}
	t = &experiments.Table{Title: "Fig 10", Headers: []string{"level", "bg", "mean_s", "p95_s", "p99_s"}}
	var p95agg0, p95agg3 float64
	for _, r := range rows10 {
		t.AddRow(strconv.Itoa(r.Level), experiments.F(r.BgUtil), experiments.F(r.MeanS), experiments.F(r.P95S), experiments.F(r.P99S))
		if r.BgUtil == 0.30 {
			if r.Level == 0 {
				p95agg0 = r.P95S
			}
			if r.Level == 3 {
				p95agg3 = r.P95S
			}
		}
	}
	writeCSV("fig10_aggregation_latency", t)
	add("fig10 latency grows with aggregation", p95agg3 > p95agg0, fmt.Sprintf("p95 %.0fµs → %.0fµs at 30%% bg", p95agg0*1e6, p95agg3*1e6))

	// Fig 11.
	fmt.Println("Fig 11: scale factor trade-off (packet simulation)")
	rows11, err := experiments.Fig11ScaleFactor([]int{1, 2, 3, 4}, []float64{0.20, 0.30}, cfgNet)
	if err != nil {
		log.Fatal(err)
	}
	t = &experiments.Table{Title: "Fig 11", Headers: []string{"bg", "K", "p95_s", "switches", "feasible"}}
	var k1p95, k4p95 float64
	var k1sw, k4sw int
	for _, r := range rows11 {
		t.AddRow(experiments.F(r.BgUtil), strconv.Itoa(r.K), experiments.F(r.P95S), strconv.Itoa(r.ActiveSwitches), strconv.FormatBool(r.Feasible))
		if r.BgUtil == 0.30 && r.Feasible {
			if r.K == 1 {
				k1p95, k1sw = r.P95S, r.ActiveSwitches
			}
			if r.K == 4 {
				k4p95, k4sw = r.P95S, r.ActiveSwitches
			}
		}
	}
	writeCSV("fig11_scalefactor", t)
	add("fig11 K trades switches for latency", k4sw >= k1sw && k4p95 <= k1p95*1.05,
		fmt.Sprintf("K=1: %d sw/%.0fµs; K=4: %d sw/%.0fµs", k1sw, k1p95*1e6, k4sw, k4p95*1e6))

	// Fig 12.
	fmt.Println("Fig 12: server policies")
	cfgSrv := experiments.DefaultServerExpConfig()
	cfgSrv.DurationS = serverDur
	cfgSrv.Workers = *workers
	if *quick {
		cfgSrv.Cores = 4
	}
	rows12, err := experiments.Fig12bConstraintSweep([]float64{16e-3, 25e-3, 40e-3}, 0.30, cfgSrv)
	if err != nil {
		log.Fatal(err)
	}
	t = &experiments.Table{Title: "Fig 12b", Headers: []string{"policy", "constraint_s", "cpu_w", "miss"}}
	byPol := map[experiments.PolicyName]float64{}
	for _, p := range rows12 {
		t.AddRow(string(p.Policy), experiments.F(p.ConstraintS), experiments.F(p.CPUPowerW), experiments.F(p.MissRate))
		if p.ConstraintS == 16e-3 {
			byPol[p.Policy] = p.CPUPowerW
		}
	}
	writeCSV("fig12b_constraint_sweep", t)
	add("fig12 policy ordering at 16ms",
		byPol[experiments.PolEPRONS] <= byPol[experiments.PolRubik]*1.02 && byPol[experiments.PolRubik] <= byPol[experiments.PolNone]*1.02,
		fmt.Sprintf("eprons %.1fW ≤ rubik %.1fW ≤ none %.1fW", byPol[experiments.PolEPRONS], byPol[experiments.PolRubik], byPol[experiments.PolNone]))

	// Fig 13 + 15 (trained models).
	fmt.Println("training server power tables…")
	eprons, tt, mf, err := experiments.TrainTablesWorkers(*quick, *workers)
	if err != nil {
		log.Fatal(err)
	}
	rows13, err := experiments.Fig13JointPowerScaled(eprons, []float64{0.01, 0.20, 0.35}, []float64{19e-3, 25e-3, 31e-3, 40e-3}, 25, *workers)
	if err != nil {
		log.Fatal(err)
	}
	t = &experiments.Table{Title: "Fig 13", Headers: []string{"bg", "level", "constraint_s", "total_w", "feasible"}}
	agg3Infeasible35 := true
	for _, r := range rows13 {
		t.AddRow(experiments.F(r.BgUtil), strconv.Itoa(r.Level), experiments.F(r.ConstraintS), experiments.F(r.TotalW), strconv.FormatBool(r.Feasible))
		if r.BgUtil == 0.35 && r.Level == 3 && r.Feasible {
			agg3Infeasible35 = false
		}
	}
	writeCSV("fig13_joint_power", t)
	add("fig13 agg3 infeasible at heavy bg", agg3Infeasible35, "deliberately keeping switches on is the only feasible choice")

	// Fig 14.
	times, search, bg := experiments.Fig14Traces(288)
	t = &experiments.Table{Title: "Fig 14", Headers: []string{"t_s", "search", "background"}}
	for i := range times {
		t.AddRow(experiments.F(times[i]), experiments.F(search[i]), experiments.F(bg[i]))
	}
	writeCSV("fig14_traces", t)

	// Fig 15.
	fmt.Println("Fig 15: 24h diurnal run")
	step := 300.0
	if !*quick {
		step = 60
	}
	sum, err := experiments.Fig15DiurnalWorkers(eprons, tt, mf, step, *workers)
	if err != nil {
		log.Fatal(err)
	}
	res := sum.Result
	t = &experiments.Table{Title: "Fig 15", Headers: []string{"t_s", "eprons_w", "timetrader_w", "nopm_w"}}
	for i := range res.Times {
		t.AddRow(experiments.F(res.Times[i]), experiments.F(res.EPRONS.TotalW.V[i]),
			experiments.F(res.TimeTrader.TotalW.V[i]), experiments.F(res.NoPM.TotalW.V[i]))
	}
	writeCSV("fig15_diurnal", t)
	add("fig15 EPRONS ≥ 2x TimeTrader", sum.EPRONSAvgSaving >= 1.5*sum.TTAvgSaving,
		fmt.Sprintf("avg saving %.1f%% vs %.1f%% (peak %.1f%%; paper: 25%%/8%%, peak 31.25%%)",
			sum.EPRONSAvgSaving*100, sum.TTAvgSaving*100, sum.EPRONSPeakSaving*100))

	// Summary.
	failed := 0
	for _, c := range checks {
		if !c.ok {
			failed++
		}
	}
	fmt.Printf("\n%d/%d shape checks passed; CSVs in %s/\n", len(checks)-failed, len(checks), outDir)
	if failed > 0 {
		os.Exit(1)
	}
}

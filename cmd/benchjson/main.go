// Command benchjson converts `go test -bench` output (read from stdin, or
// from files given as arguments) into a machine-readable BENCH_<n>.json
// snapshot so the perf trajectory is comparable across PRs:
//
//	make bench-json
//	go test -run XXX -bench . -benchmem ./... | go run ./cmd/benchjson
//
// Repeated samples (-count) are aggregated per benchmark into mean ns/op,
// B/op and allocs/op. With -out "" (the default) the snapshot is written to
// BENCH_<n>.json where n is one past the highest existing snapshot index in
// -dir; pass -out - to write the JSON to stdout instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"time"

	"eprons/internal/benchparse"
)

type entry struct {
	Name        string  `json:"name"`
	Samples     int     `json:"samples"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type snapshot struct {
	Date    string  `json:"date"`
	Results []entry `json:"results"`
}

var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// nextIndex returns one past the highest BENCH_<n>.json index in dir.
func nextIndex(dir string) int {
	max := -1
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		m := benchFile.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n > max {
			max = n
		}
	}
	return max + 1
}

func run() error {
	out := flag.String("out", "", `output path; "" auto-names BENCH_<n>.json in -dir, "-" writes to stdout`)
	dir := flag.String("dir", ".", "directory scanned for existing BENCH_<n>.json snapshots")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		var readers []io.Reader
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}
	results, err := benchparse.Parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	snap := snapshot{Date: time.Now().UTC().Format("2006-01-02")}
	for _, s := range benchparse.Summarize(results) {
		snap.Results = append(snap.Results, entry{
			Name:        s.Name,
			Samples:     s.Samples,
			NsPerOp:     s.NsPerOp.Mean,
			BytesPerOp:  s.BytesPerOp.Mean,
			AllocsPerOp: s.AllocsPerOp.Mean,
		})
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	switch *out {
	case "-":
		_, err = os.Stdout.Write(buf)
		return err
	case "":
		*out = filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", nextIndex(*dir)))
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(snap.Results))
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Command consolidate demonstrates latency-aware traffic consolidation:
// the Fig 2 scale-factor example, the Fig 9 aggregation policies, and the
// greedy-vs-exact ablation.
//
// Usage:
//
//	consolidate [-demo] [-policies] [-ablation]
//
// With no flags, everything runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"time"

	"eprons/internal/experiments"
)

func main() {
	demo := flag.Bool("demo", false, "run only the Fig 2 scale-factor demo")
	policies := flag.Bool("policies", false, "run only the Fig 9 aggregation policies")
	ablation := flag.Bool("ablation", false, "run only the greedy-vs-exact comparison")
	csvOut := flag.Bool("csv", false, "emit tables as CSV")
	flag.Parse()
	all := !*demo && !*policies && !*ablation

	if *demo || all {
		rows, ft, results, err := experiments.Fig02ScaleDemo()
		if err != nil {
			log.Fatal(err)
		}
		t := &experiments.Table{
			Title:   "Fig 2 — scale factor K moves latency-sensitive flows off the elephant path",
			Headers: []string{"K", "active switches", "flows sharing elephant links", "feasible"},
		}
		for _, r := range rows {
			t.AddRow(experiments.F(r.K), strconv.Itoa(r.ActiveSwitches),
				strconv.Itoa(r.SharedWithBig), strconv.FormatBool(r.Feasible))
		}
		fmt.Print(experiments.Render(t, *csvOut))
		fmt.Println("\npaths at K=3:")
		for id, p := range results[3].Paths {
			fmt.Printf("  flow %d: ", id)
			for i, n := range p {
				if i > 0 {
					fmt.Print(" → ")
				}
				fmt.Print(ft.Graph.Node(n).Name)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if *policies || all {
		rows, err := experiments.Fig09Policies()
		if err != nil {
			log.Fatal(err)
		}
		t := &experiments.Table{
			Title:   "Fig 9 — aggregation policies of the 4-ary fat-tree",
			Headers: []string{"level", "switches on", "links on", "network power (W)", "connected"},
		}
		for _, r := range rows {
			t.AddRow(strconv.Itoa(r.Level), strconv.Itoa(r.ActiveSwitches),
				strconv.Itoa(r.ActiveLinks), experiments.W(r.NetworkPowerW),
				strconv.FormatBool(r.Connected))
		}
		fmt.Print(experiments.Render(t, *csvOut))
		fmt.Println()
	}

	if *ablation || all {
		rows, err := experiments.AblationHeuristicVsExact([]int{3, 5, 8}, 1, 2000)
		if err != nil {
			log.Fatal(err)
		}
		t := &experiments.Table{
			Title:   "Ablation — greedy heuristic vs exact MILP (eq. 2–9)",
			Headers: []string{"flows", "greedy sw", "exact sw", "greedy", "exact"},
		}
		for _, r := range rows {
			exact := strconv.Itoa(r.ExactSwitches)
			if !r.ExactOptimal {
				exact += " (node-limited)"
			}
			t.AddRow(strconv.Itoa(r.Flows), strconv.Itoa(r.GreedySwitches),
				exact, r.GreedyDur.Round(time.Microsecond).String(), r.ExactDur.Round(time.Millisecond).String())
		}
		fmt.Print(experiments.Render(t, *csvOut))
	}
}

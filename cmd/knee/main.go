// Command knee regenerates Fig 1: the link-utilization vs network-latency
// curve whose knee motivates latency-aware traffic consolidation.
//
// Usage:
//
//	knee [-duration 5] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"eprons/internal/experiments"
)

func main() {
	duration := flag.Float64("duration", 5, "simulated seconds per utilization point")
	seed := flag.Int64("seed", 1, "random seed")
	csvOut := flag.Bool("csv", false, "emit tables as CSV")
	flag.Parse()

	utils := []float64{0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.93, 0.95}
	pts, err := experiments.Fig01Knee(utils, *duration, *seed)
	if err != nil {
		log.Fatal(err)
	}
	t := &experiments.Table{
		Title:   "Fig 1 — link utilization vs query network latency (single bottleneck)",
		Headers: []string{"util", "mean(µs)", "p95(µs)", "p99(µs)"},
	}
	for _, p := range pts {
		t.AddRow(experiments.Pct(p.Utilization), experiments.Us(p.MeanS),
			experiments.Us(p.P95S), experiments.Us(p.P99S))
	}
	fmt.Print(experiments.Render(t, *csvOut))
	fmt.Printf("\nknee: latency at %.0f%% util is %.1fx the latency at 20%%\n",
		pts[len(pts)-1].Utilization*100, pts[len(pts)-1].MeanS/pts[2].MeanS)
}

// Command epronsim regenerates the headline diurnal experiment: Fig 14's
// 24-hour traces and Fig 15's total-system-power comparison of EPRONS,
// TimeTrader and no power management, reporting average and peak savings
// (the paper: 25% average, 31.25% peak for EPRONS vs 8% / 12.5% for
// TimeTrader).
//
// Usage:
//
//	epronsim [-quick] [-step 60] [-traces]
//	epronsim -twin [-twink 74]
//	epronsim -faults [-faultrates 0,0.5,1,2] [-faultdur 5] [-faultseed 1] [-audit] [-fluid]
//	epronsim -overload [-overloadmults 0.5,1,2,3] [-overloaddur 2] [-surge step] [-audit] [-fluid]
//	epronsim -replicas 1,3 [-selection primary,p2c,hedged] [-hedge 0] [-faultrates 0,1,2] [-audit]
//
// The -faults mode runs the availability experiment instead: seeded
// switch crashes and link flaps against the consolidated fabric, with
// controller route repair and aggregator sub-query retry, reporting query
// goodput, retries and SLA miss rate per fault rate.
//
// The -overload mode runs the flash-crowd overload sweep: the offered
// query rate is pushed to each multiplier of the base rate and the
// overload control plane (bounded queues, watermark admission + load
// shedding, controller surge response) is compared against the
// unprotected baseline.
//
// The -replicas mode runs the replicated search-tier sweep: the index is
// placed R-replicated by consistent hashing with pod spreading, and
// goodput, tail latency, duplicate work and joint power are compared
// across replication factors × selection policies (-selection) × fault
// rates (-faultrates, edge switches included so hosts genuinely drop
// off). -hedge overrides the hedged policy's duplicate delay (0 tracks
// the observed sub-query p95). -audit enables runtime invariant checks in
// all three modes.
//
// The -twin mode answers closed-form what-if capacity queries on an
// arbitrary fat-tree arity (default k=74, a 101,306-host fabric) with no
// simulation at all — the analytic twin behind the planner's fast inner
// loop (see `joint -twincheck` for its DES validation).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"eprons/internal/cluster"
	"eprons/internal/experiments"
	"eprons/internal/parallel"
	"eprons/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "small training grid (faster, coarser)")
	step := flag.Float64("step", 60, "reporting granularity in seconds (Fig 15 uses 60)")
	tracesOnly := flag.Bool("traces", false, "print only the Fig 14 traces")
	faultsMode := flag.Bool("faults", false, "run the fault-injection availability experiment and exit")
	faultRates := flag.String("faultrates", "0,0.5,1,2", "fault rates to sweep (total fail events/s, split between switch crashes and link flaps)")
	faultDur := flag.Float64("faultdur", 5, "seconds of traffic and fault injection per rate")
	faultSeed := flag.Int64("faultseed", 1, "seed for the fault schedule and workload streams")
	overloadMode := flag.Bool("overload", false, "run the flash-crowd overload experiment and exit")
	overloadMults := flag.String("overloadmults", "0.5,1,2,3", "offered-load multipliers to sweep (x base rate; >1 arrives as a flash crowd)")
	overloadDur := flag.Float64("overloaddur", 2, "seconds of query traffic per multiplier cell")
	overloadRate := flag.Float64("overloadrate", 200, "base (1x) query rate in queries/s")
	overloadSeed := flag.Int64("overloadseed", 1, "seed for the overload workload streams")
	overloadWM := flag.Int("overloadwm", 0, "admission high watermark override (0 derives the SLA-aware default)")
	surgeShape := flag.String("surge", "step", "flash-crowd profile: step, spike or ramp")
	surgeResponse := flag.Bool("surgeresponse", true, "let the controller re-expand the fabric on sustained saturation")
	replicasArg := flag.String("replicas", "", "run the replicated search-tier sweep over these replication factors (e.g. 1,3) and exit; uses -faultrates/-faultdur/-faultseed for the fault axis")
	selectionArg := flag.String("selection", "primary", "replica selection policies to sweep: primary, p2c and/or hedged (comma separated)")
	hedgeDelay := flag.Float64("hedge", 0, "hedged-policy duplicate delay in seconds (0 = track the observed sub-query p95)")
	audit := flag.Bool("audit", false, "run runtime invariant checks (query conservation, offered>=carried bytes, hedge accounting, replica reachability, scheduler bookkeeping) after each cell")
	fluid := flag.Bool("fluid", false, "hybrid fluid/packet background-traffic engine in -faults/-overload modes (order-of-magnitude fewer events; off = exact packet-level simulation)")
	workers := flag.Int("workers", parallel.DefaultWorkers(), "concurrency for table training, the per-scheme diurnal replays and the planner's K search (<=1 runs sequentially, results are identical either way)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	shards := flag.Int("shards", 1, "pod shards per packet simulation (conservative lockstep windows). The planner figures involve no packet simulation, and -faults/-overload need retries and admission control, which the sharded cluster envelope excludes — so any value other than 1 is rejected in those modes")
	twinMode := flag.Bool("twin", false, "answer closed-form what-if capacity queries on a -twink fabric and exit (no simulation, no topology graph)")
	twinK := flag.Int("twink", 74, "fat-tree arity for -twin (74 = 101,306 hosts)")
	csvOut := flag.Bool("csv", false, "emit tables as CSV")
	flag.Parse()

	if *shards != 1 && *shards != 0 {
		// The sharded engine requires the no-drop, no-retry broadcast
		// envelope (cluster.ErrShardEnvelope names the offending option);
		// the fault, overload and replica experiments are defined by
		// violating it, and the planner figures (Fig 13/15) run no packet
		// simulation at all. Reject rather than silently ignore.
		log.Fatal("-shards is only meaningful for the packet-level figure sweeps (timeouts, retries, admission control and replication are outside the sharded cluster envelope); use cmd/netsweep -shards or cmd/reproduce -shards")
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *twinMode {
		t, _, err := experiments.TwinCapacityTable(*twinK, []float64{0.01, 0.20, 0.50}, 0.30)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.Render(t, *csvOut))
		fmt.Println("\nrows marked CLAMPED are outside the validated domain; see `joint -twincheck`")
		fmt.Println("for the DES validation and the pinned in-domain error bands.")
		return
	}

	if *replicasArg != "" {
		err := runReplicas(*replicasArg, *selectionArg, *faultRates, *faultDur, *hedgeDelay,
			*faultSeed, *workers, *audit, *csvOut)
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if *faultsMode {
		if err := runFaults(*faultRates, *faultDur, *faultSeed, *workers, *audit, *fluid, *csvOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *overloadMode {
		err := runOverload(*overloadMults, *overloadDur, *overloadRate, *overloadSeed,
			*surgeShape, *surgeResponse, *overloadWM, *workers, *audit, *fluid, *csvOut)
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if *tracesOnly {
		printTraces(*csvOut)
		return
	}

	fmt.Println("training server power tables (EPRONS, TimeTrader, MaxFreq)…")
	eprons, tt, mf, err := experiments.TrainTablesWorkers(*quick, *workers)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := experiments.Fig15DiurnalWorkers(eprons, tt, mf, *step, *workers)
	if err != nil {
		log.Fatal(err)
	}
	res := sum.Result

	t := &experiments.Table{
		Title:   "Fig 15(a) — total system power over 24 h (hourly rows; simulation at the chosen step)",
		Headers: []string{"hour", "search load", "background", "EPRONS (W)", "TimeTrader (W)", "no PM (W)", "EPRONS net (W)"},
	}
	perHour := int(3600 / *step)
	if perHour < 1 {
		perHour = 1
	}
	for i := 0; i < res.EPRONS.TotalW.Len(); i += perHour {
		t.AddRow(
			fmt.Sprintf("%02d:00", int(res.Times[i]/3600)),
			experiments.Pct(res.SearchLoad[i]),
			experiments.Pct(res.BgLoad[i]),
			experiments.W(res.EPRONS.TotalW.V[i]),
			experiments.W(res.TimeTrader.TotalW.V[i]),
			experiments.W(res.NoPM.TotalW.V[i]),
			experiments.W(res.EPRONS.NetW.V[i]),
		)
	}
	fmt.Print(experiments.Render(t, *csvOut))

	fmt.Println("\nFig 15(b) — savings vs no power management:")
	fmt.Printf("  EPRONS:     total avg %s, total peak %s, server avg %s, network avg %s\n",
		experiments.Pct(sum.EPRONSAvgSaving), experiments.Pct(sum.EPRONSPeakSaving),
		experiments.Pct(sum.ServerAvgEPRONS), experiments.Pct(sum.NetAvgEPRONS))
	fmt.Printf("  TimeTrader: total avg %s, total peak %s, server avg %s, network avg 0.0%%\n",
		experiments.Pct(sum.TTAvgSaving), experiments.Pct(sum.TTPeakSaving),
		experiments.Pct(sum.ServerAvgTT))
	fmt.Printf("\npaper reference: EPRONS 25%% avg / 31.25%% peak; TimeTrader 8%% avg / 12.5%% peak\n")
}

func runFaults(ratesArg string, dur float64, seed int64, workers int, audit, fluid, csv bool) error {
	rates, err := parseFloatList(ratesArg)
	if err != nil {
		return err
	}
	rows, err := experiments.AvailabilitySweep(rates, experiments.AvailabilityConfig{
		DurationS: dur,
		Seed:      seed,
		Workers:   workers,
		Audit:     audit,
		Fluid:     fluid,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.Render(experiments.AvailabilityTable(rows), csv))
	return nil
}

func runOverload(multsArg string, dur, rate float64, seed int64, shape string, surgeResponse bool, highWM, workers int, audit, fluid, csv bool) error {
	mults, err := parseFloatList(multsArg)
	if err != nil {
		return err
	}
	profile, err := workload.ParseSurgeProfile(shape)
	if err != nil {
		return err
	}
	rows, err := experiments.OverloadSweep(mults, experiments.OverloadConfig{
		DurationS:     dur,
		BaseRate:      rate,
		Profile:       profile,
		SurgeResponse: surgeResponse,
		HighWM:        highWM,
		Audit:         audit,
		Fluid:         fluid,
		Seed:          seed,
		Workers:       workers,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.Render(experiments.OverloadTable(rows), csv))
	return nil
}

func runReplicas(replicasArg, selectionArg, ratesArg string, dur, hedge float64, seed int64, workers int, audit, csv bool) error {
	replicas, err := parseIntList(replicasArg)
	if err != nil {
		return err
	}
	selections, err := parseSelectionList(selectionArg)
	if err != nil {
		return err
	}
	rates, err := parseFloatList(ratesArg)
	if err != nil {
		return err
	}
	rows, err := experiments.ReplicaSweep(replicas, selections, rates, experiments.ReplicaConfig{
		DurationS:   dur,
		HedgeDelayS: hedge,
		Seed:        seed,
		Workers:     workers,
		Audit:       audit,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.Render(experiments.ReplicaTable(rows), csv))
	return nil
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseSelectionList(s string) ([]cluster.SelectionPolicy, error) {
	var out []cluster.SelectionPolicy
	for _, part := range strings.Split(s, ",") {
		sel, err := cluster.ParseSelection(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, sel)
	}
	return out, nil
}

func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func printTraces(csv bool) {
	times, search, bg := experiments.Fig14Traces(48)
	t := &experiments.Table{
		Title:   "Fig 14 — diurnal traces (half-hour samples)",
		Headers: []string{"time", "search load (% of peak)", "background (% of bandwidth)"},
	}
	for i := range times {
		h := int(times[i]) / 3600
		m := (int(times[i]) % 3600) / 60
		t.AddRow(fmt.Sprintf("%02d:%02d", h, m), experiments.Pct(search[i]), experiments.Pct(bg[i]))
	}
	fmt.Print(experiments.Render(t, csv))
}

// Command serversweep regenerates the server-side evaluation: Fig 12(a)
// CPU power vs utilization per policy, Fig 12(b) CPU power vs tail-latency
// constraint, Fig 12(c) the EPRONS-Server (utilization × constraint) grid,
// and the Fig 4 violation-probability mechanism curves.
//
// Usage:
//
//	serversweep [-fig 12a|12b|12c|4|all] [-duration 30] [-cores 12]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"

	"eprons/internal/experiments"
	"eprons/internal/parallel"
)

func main() {
	fig := flag.String("fig", "all", "which figure: 12a, 12b, 12c, 4, 5 or all")
	duration := flag.Float64("duration", 30, "simulated seconds per point")
	cores := flag.Int("cores", 12, "cores per server")
	workers := flag.Int("workers", parallel.DefaultWorkers(), "sweep concurrency (points are independently seeded simulations; <=1 runs sequentially, results are identical either way)")
	csvOut := flag.Bool("csv", false, "emit tables as CSV")
	flag.Parse()

	cfg := experiments.DefaultServerExpConfig()
	cfg.DurationS = *duration
	cfg.Cores = *cores
	cfg.Workers = *workers

	if *fig == "12a" || *fig == "all" {
		pts, err := experiments.Fig12aUtilizationSweep(
			[]float64{0.10, 0.20, 0.30, 0.40, 0.50}, 30e-3, cfg)
		if err != nil {
			log.Fatal(err)
		}
		t := &experiments.Table{
			Title:   "Fig 12(a) — CPU power vs server utilization (30 ms constraint: 25 server + 5 network)",
			Headers: []string{"policy", "utilization", "CPU power (W)", "SLA miss", "mean freq (GHz)"},
		}
		for _, p := range pts {
			t.AddRow(string(p.Policy), experiments.Pct(p.Util),
				experiments.W(p.CPUPowerW), experiments.Pct(p.MissRate),
				experiments.F(p.MeanFreqGHz))
		}
		fmt.Print(experiments.Render(t, *csvOut))
		fmt.Println()
	}

	if *fig == "12b" || *fig == "all" {
		pts, err := experiments.Fig12bConstraintSweep(
			[]float64{16e-3, 19e-3, 22e-3, 25e-3, 28e-3, 31e-3, 34e-3, 40e-3}, 0.30, cfg)
		if err != nil {
			log.Fatal(err)
		}
		t := &experiments.Table{
			Title:   "Fig 12(b) — CPU power vs request tail-latency constraint (30% utilization)",
			Headers: []string{"policy", "constraint(ms)", "CPU power (W)", "SLA miss", "mean freq (GHz)"},
		}
		for _, p := range pts {
			t.AddRow(string(p.Policy), experiments.Ms(p.ConstraintS),
				experiments.W(p.CPUPowerW), experiments.Pct(p.MissRate),
				experiments.F(p.MeanFreqGHz))
		}
		fmt.Print(experiments.Render(t, *csvOut))
		fmt.Println()
	}

	if *fig == "12c" || *fig == "all" {
		pts, err := experiments.Fig12cEPRONSGrid(
			[]float64{0.10, 0.20, 0.30, 0.40, 0.50},
			[]float64{16e-3, 20e-3, 25e-3, 30e-3, 40e-3}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		t := &experiments.Table{
			Title:   "Fig 12(c) — EPRONS-Server CPU power across (utilization, constraint)",
			Headers: []string{"utilization", "constraint(ms)", "CPU power (W)", "SLA miss"},
		}
		for _, p := range pts {
			t.AddRow(experiments.Pct(p.Util), experiments.Ms(p.ConstraintS),
				experiments.W(p.CPUPowerW), experiments.Pct(p.MissRate))
		}
		fmt.Print(experiments.Render(t, *csvOut))
		fmt.Println()
	}

	if *fig == "5" || *fig == "all" {
		var omegas []float64
		for w := 2e-3; w <= 36e-3; w += 2e-3 {
			omegas = append(omegas, w)
		}
		pts, err := experiments.Fig05EquivalentCCDF(omegas)
		if err != nil {
			log.Fatal(err)
		}
		t := &experiments.Table{
			Title:   "Fig 5 — violation probability of equivalent requests vs work bound ω(D)",
			Headers: []string{"ω(D) (ms)", "VP(R1e)", "VP(R2e)", "VP(R3e)"},
		}
		for _, p := range pts {
			t.AddRow(experiments.Ms(p.OmegaS), experiments.Pct(p.VPR1e),
				experiments.Pct(p.VPR2e), experiments.Pct(p.VPR3e))
		}
		fmt.Print(experiments.Render(t, *csvOut))
		fmt.Println()
	}

	if *fig == "4" || *fig == "all" {
		pts, fMax, fAvg, err := experiments.Fig04ViolationCurves(12e-3, 18e-3)
		if err != nil {
			log.Fatal(err)
		}
		t := &experiments.Table{
			Title:   "Fig 4 — violation probability vs frequency (two queued requests)",
			Headers: []string{"freq (GHz)", "VP(R1)", "VP(R2e)", "avg VP"},
		}
		for _, p := range pts {
			t.AddRow(strconv.FormatFloat(p.FreqGHz, 'f', 1, 64),
				experiments.Pct(p.VPR1), experiments.Pct(p.VPR2e), experiments.Pct(p.AvgVP))
		}
		fmt.Print(experiments.Render(t, *csvOut))
		fmt.Printf("\nprior work (max VP ≤ 5%%) needs %.1f GHz; EPRONS (avg VP ≤ 5%%) runs at %.1f GHz\n", fMax, fAvg)
	}
}

// Benchmarks that regenerate every table and figure of the paper's
// evaluation (one benchmark per figure, plus the DESIGN.md ablations).
// Key series values are attached as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints the reproduced numbers alongside timing. The cmd/ tools print the
// same data as full tables.
package eprons

import (
	"sync"
	"testing"

	"eprons/internal/consolidate"
	"eprons/internal/core"
	"eprons/internal/dvfs"
	"eprons/internal/experiments"
	"eprons/internal/fattree"
	"eprons/internal/fft"
	"eprons/internal/flow"
	"eprons/internal/power"
	"eprons/internal/rng"
	"eprons/internal/server"
	"eprons/internal/sim"
	"eprons/internal/topology"
	"eprons/internal/workload"
)

// tables caches the trained server power models across benchmarks (the
// quick grid: 3 utilizations × 4 budgets, 4 cores).
var (
	tablesOnce sync.Once
	tblEPRONS  *core.ServerPowerTable
	tblTT      *core.ServerPowerTable
	tblMF      *core.ServerPowerTable
	tablesErr  error
)

func trainedTables(b *testing.B) (*core.ServerPowerTable, *core.ServerPowerTable, *core.ServerPowerTable) {
	b.Helper()
	tablesOnce.Do(func() {
		tblEPRONS, tblTT, tblMF, tablesErr = experiments.TrainTables(true)
	})
	if tablesErr != nil {
		b.Fatal(tablesErr)
	}
	return tblEPRONS, tblTT, tblMF
}

func BenchmarkFig01UtilizationLatencyKnee(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig01Knee([]float64{0.20, 0.50, 0.90}, 2, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].MeanS*1e6, "us-mean@20%")
		b.ReportMetric(pts[2].MeanS*1e6, "us-mean@90%")
		b.ReportMetric(pts[2].MeanS/pts[0].MeanS, "knee-ratio")
	}
}

func BenchmarkFig02ScaleFactorExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, _, err := experiments.Fig02ScaleDemo()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].ActiveSwitches), "switches@K=1")
		b.ReportMetric(float64(rows[2].ActiveSwitches), "switches@K=3")
		b.ReportMetric(float64(rows[2].SharedWithBig), "sharing@K=3")
	}
}

func BenchmarkFig04ViolationProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, fMax, fAvg, err := experiments.Fig04ViolationCurves(12e-3, 18e-3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fMax, "GHz-maxvp")
		b.ReportMetric(fAvg, "GHz-avgvp")
	}
}

func BenchmarkFig08SwitchPowerModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig08SwitchPower()
		b.ReportMetric(pts[0].PowerW, "W-idle")
		b.ReportMetric(pts[len(pts)-1].PowerW-pts[0].PowerW, "W-delta")
	}
}

func BenchmarkFig09AggregationPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig09Policies()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].ActiveSwitches), "switches@agg0")
		b.ReportMetric(float64(rows[3].ActiveSwitches), "switches@agg3")
		b.ReportMetric(rows[3].NetworkPowerW, "W-net@agg3")
	}
}

func BenchmarkFig10AggregationLatency(b *testing.B) {
	cfg := experiments.NetLatencyConfig{DurationS: 1.5}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10AggregationLatency([]int{0, 3}, []float64{0.20}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].P95S*1e6, "us-p95@agg0")
		b.ReportMetric(rows[1].P95S*1e6, "us-p95@agg3")
	}
}

// BenchmarkFig10EndToEndFluid is the same Fig 10 cell as
// BenchmarkFig10AggregationLatency with the hybrid fluid/packet background
// engine on: the 12 k=4 elephants become analytic link reservations, so the
// end-to-end figure regeneration should run several times faster while the
// reported tails stay within the pinned tolerance
// (experiments.TestFig10FluidTolerance).
func BenchmarkFig10EndToEndFluid(b *testing.B) {
	cfg := experiments.NetLatencyConfig{DurationS: 1.5, Fluid: true}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10AggregationLatency([]int{0, 3}, []float64{0.20}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].P95S*1e6, "us-p95@agg0")
		b.ReportMetric(rows[1].P95S*1e6, "us-p95@agg3")
	}
}

// BenchmarkFig10K8 regenerates a Fig 10 cell on the 8-ary fat-tree
// (128 hosts, 80 switches, 56 background elephants) — the packet-level
// scale point the fluid engine unlocks. Per-pod flow counts grow as k², so
// without fluid folding this cell is dominated by elephant packet events.
func BenchmarkFig10K8(b *testing.B) {
	cfg := experiments.NetLatencyConfig{DurationS: 0.75, K: 8, Fluid: true}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10AggregationLatency([]int{0, 3}, []float64{0.20}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].P95S*1e6, "us-p95@agg0")
		b.ReportMetric(rows[1].P95S*1e6, "us-p95@agg3")
	}
}

// k16Cfg is the shared configuration of the k=16 scale benchmarks: a
// 1024-host, 320-switch fat-tree at packet fidelity. The fluid engine
// folds the 240 background elephants and ECMPQueries routes the ~1M query
// host pairs by direct hash-probed path construction (enumerating 64
// candidate paths per pair through the consolidation placer would dominate
// the run). Query traffic itself stays packet-level.
func k16Cfg(shards int) experiments.NetLatencyConfig {
	return experiments.NetLatencyConfig{
		DurationS: 0.2, K: 16, Fluid: true, ECMPQueries: true, Shards: shards,
	}
}

// BenchmarkFig10K16 regenerates a Fig 10 cell on the 16-ary fat-tree with
// the sequential engine — the single-core packet-fidelity baseline for the
// sharded engine below.
func BenchmarkFig10K16(b *testing.B) {
	cfg := k16Cfg(1)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10AggregationLatency([]int{0, 3}, []float64{0.20}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].P95S*1e6, "us-p95@agg0")
		b.ReportMetric(rows[1].P95S*1e6, "us-p95@agg3")
	}
}

// BenchmarkFig10K16Sharded is the same cell on the pod-sharded engine
// (4 shards, 4 pods each). Figure output is bit-identical to the
// sequential benchmark above; the speedup comes from parallel window
// execution on multi-core machines plus four 4× smaller event heaps (the
// heap-operation win holds even on a single core).
func BenchmarkFig10K16Sharded(b *testing.B) {
	cfg := k16Cfg(4)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10AggregationLatency([]int{0, 3}, []float64{0.20}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].P95S*1e6, "us-p95@agg0")
		b.ReportMetric(rows[1].P95S*1e6, "us-p95@agg3")
	}
}

// BenchmarkFig10K32 regenerates a Fig 10 cell on the 32-ary fat-tree:
// 8192 hosts, 1280 switches, ~67M ordered host pairs. This scale is only
// reachable through the flyweight route plane — ECMP routing flips to the
// on-demand resolver (no precomputed all-pairs route table) and each
// resolved route interns into the shared segment arena as a 12-byte ref,
// so the route-plane footprint is the segments actually exercised by
// traffic, not the pair space.
func BenchmarkFig10K32(b *testing.B) {
	cfg := experiments.NetLatencyConfig{
		DurationS: 0.05, K: 32, Fluid: true, ECMPQueries: true, Shards: 1,
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10AggregationLatency([]int{0, 3}, []float64{0.20}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].P95S*1e6, "us-p95@agg0")
		b.ReportMetric(rows[1].P95S*1e6, "us-p95@agg3")
	}
}

func BenchmarkFig11ScaleFactorTradeoff(b *testing.B) {
	cfg := experiments.NetLatencyConfig{DurationS: 1.5}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11ScaleFactor([]int{1, 4}, []float64{0.30}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].P95S*1e6, "us-p95@K1")
		b.ReportMetric(rows[1].P95S*1e6, "us-p95@K4")
		b.ReportMetric(float64(rows[1].ActiveSwitches-rows[0].ActiveSwitches), "extra-switches")
	}
}

func benchServerCfg() experiments.ServerExpConfig {
	cfg := experiments.DefaultServerExpConfig()
	cfg.Cores = 4
	cfg.DurationS = 10
	return cfg
}

func BenchmarkFig12aUtilizationPower(b *testing.B) {
	cfg := benchServerCfg()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig12aUtilizationSweep([]float64{0.30}, 15e-3, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			switch p.Policy {
			case experiments.PolNone:
				b.ReportMetric(p.CPUPowerW, "W-none")
			case experiments.PolRubik:
				b.ReportMetric(p.CPUPowerW, "W-rubik")
			case experiments.PolEPRONS:
				b.ReportMetric(p.CPUPowerW, "W-eprons")
			}
		}
	}
}

func BenchmarkFig12bConstraintPower(b *testing.B) {
	cfg := benchServerCfg()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig12bConstraintSweep([]float64{16e-3, 30e-3}, 0.30, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Policy == experiments.PolEPRONS {
				if p.ConstraintS == 16e-3 {
					b.ReportMetric(p.CPUPowerW, "W-eprons@16ms")
				} else {
					b.ReportMetric(p.CPUPowerW, "W-eprons@30ms")
				}
			}
		}
	}
}

func BenchmarkFig12cEPRONSGrid(b *testing.B) {
	cfg := benchServerCfg()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig12cEPRONSGrid([]float64{0.10, 0.50}, []float64{16e-3, 30e-3}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].CPUPowerW, "W@10%-16ms")
		b.ReportMetric(pts[len(pts)-1].CPUPowerW, "W@50%-30ms")
	}
}

func BenchmarkFig13JointPower(b *testing.B) {
	eprons, _, _ := trainedTables(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13JointPower(eprons, []float64{0.20}, []float64{19e-3, 31e-3, 40e-3})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.ConstraintS == 40e-3 && r.Feasible {
				switch r.Level {
				case 0:
					b.ReportMetric(r.TotalW, "W@agg0-40ms")
				case 3:
					b.ReportMetric(r.TotalW, "W@agg3-40ms")
				}
			}
		}
	}
}

func BenchmarkFig14DiurnalTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, search, bg := experiments.Fig14Traces(1440)
		b.ReportMetric(search[720], "peak-load")
		b.ReportMetric(bg[0], "night-bg")
	}
}

func BenchmarkFig15DiurnalSavings(b *testing.B) {
	eprons, tt, mf := trainedTables(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := experiments.Fig15Diurnal(eprons, tt, mf, 60)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.EPRONSAvgSaving*100, "pct-avg-eprons")
		b.ReportMetric(sum.EPRONSPeakSaving*100, "pct-peak-eprons")
		b.ReportMetric(sum.TTAvgSaving*100, "pct-avg-timetrader")
	}
}

func BenchmarkAblationAvgVsMaxVP(b *testing.B) {
	cfg := benchServerCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationAvgVsMaxVP(0.40, 15e-3, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Variant {
			case "max-vp fifo (rubik+)":
				b.ReportMetric(r.CPUPowerW, "W-maxvp")
			case "avg-vp edf (eprons)":
				b.ReportMetric(r.CPUPowerW, "W-avgvp-edf")
			case "avg-vp fifo":
				b.ReportMetric(r.CPUPowerW, "W-avgvp-fifo")
			}
		}
	}
}

func BenchmarkAblationHeuristicVsExact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationHeuristicVsExact([]int{3}, 1, 800)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		b.ReportMetric(float64(r.GreedySwitches), "switches-greedy")
		b.ReportMetric(float64(r.ExactSwitches), "switches-exact")
		b.ReportMetric(float64(r.ExactDur.Microseconds())/float64(r.GreedyDur.Microseconds()+1), "slowdown-exact")
	}
}

func BenchmarkAblationConvolution(b *testing.B) {
	n := 2048
	a := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = 1 / float64(n)
		c[i] = 1 / float64(n)
	}
	b.Run("fft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fft.Convolve(a, c)
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fft.ConvolveDirect(a, c)
		}
	})
}

// BenchmarkCorePowerModel exercises the DVFS power curve (sanity metric:
// the measured endpoints).
func BenchmarkCorePowerModel(b *testing.B) {
	grid := power.FreqGrid()
	s := 0.0
	for i := 0; i < b.N; i++ {
		for _, f := range grid {
			s += power.CoreActiveW(f)
		}
	}
	b.ReportMetric(power.CoreActiveW(power.FMinGHz), "W@1.2GHz")
	b.ReportMetric(power.CoreActiveW(power.FMaxGHz), "W@2.7GHz")
	_ = s
}

// BenchmarkAblationSleepState measures the DynSleep-style extension: at low
// utilization, letting idle cores sleep cuts CPU power below DVFS alone.
func BenchmarkAblationSleepState(b *testing.B) {
	run := func(sleep bool) float64 {
		eng := sim.New()
		base, err := workload.ServiceDist(workload.DefaultServiceConfig())
		if err != nil {
			b.Fatal(err)
		}
		srv, err := server.New(eng, server.Config{
			Cores: 4, Alpha: 0.9, FMaxGHz: power.FMaxGHz,
			PolicyFactory: func(int) server.Policy {
				m, err := dvfs.NewModel(base, 0.9, power.FMaxGHz)
				if err != nil {
					b.Fatal(err)
				}
				return dvfs.NewEPRONSServer(m, 0.05)
			},
			Sleep: sleep,
		})
		if err != nil {
			b.Fatal(err)
		}
		arr := rng.Derive(3, "sleep-bench")
		smp := workload.NewSampler(base, 4)
		rate := server.RateForUtilization(0.10, 4, base.Mean())
		var id int64
		var arrive func()
		arrive = func() {
			now := eng.Now()
			id++
			srv.Enqueue(&server.Request{ID: id, Arrival: now, BaseServiceS: smp.Draw(),
				ServerDeadline: now + 25e-3, SlackDeadline: now + 25e-3})
			if now < 10 {
				eng.After(arr.Exp(1/rate), arrive)
			}
		}
		arrive()
		eng.Run(12)
		eng.RunAll()
		return srv.CPUPowerW(0, eng.Now())
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "W-dvfs-only")
		b.ReportMetric(run(true), "W-dvfs+sleep")
	}
}

// BenchmarkScalabilityGreedyK8 consolidates a realistic mix on an 8-ary
// fat-tree (128 hosts, 80 switches) — the paper's future-work scale.
func BenchmarkScalabilityGreedyK8(b *testing.B) {
	cfg := fattree.DefaultConfig()
	cfg.K = 8
	ft, err := fattree.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	stream := rng.Derive(7, "k8-bench")
	var flows []flow.Flow
	// Cap per-host offered load below access-link capacity so the instance
	// is always placeable (randomly stacked elephants would otherwise
	// oversubscribe a host NIC, which no consolidator can fix).
	out := map[topology.NodeID]float64{}
	in := map[topology.NodeID]float64{}
	for i := 0; i < 400; i++ {
		src := ft.Hosts[stream.Intn(len(ft.Hosts))]
		dst := ft.Hosts[stream.Intn(len(ft.Hosts))]
		if src == dst {
			continue
		}
		class := flow.LatencySensitive
		demand := 5e6 + stream.Float64()*20e6
		if stream.Intn(4) == 0 {
			class = flow.Background
			demand = 100e6 + stream.Float64()*200e6
		}
		eff := 2 * demand // matches the bench's ScaleK=2 reservation bound
		if class == flow.Background {
			eff = demand
		}
		if out[src]+eff > 700e6 || in[dst]+eff > 700e6 {
			continue
		}
		out[src] += eff
		in[dst] += eff
		flows = append(flows, flow.Flow{ID: flow.ID(i), Src: src, Dst: dst, DemandBps: demand, Class: class})
	}
	ccfg := consolidate.Config{ScaleK: 2, SafetyMarginBps: 50e6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := consolidate.Greedy(ft, flows, ccfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("k=8 consolidation infeasible")
		}
		b.ReportMetric(float64(res.Active.ActiveSwitches()), "switches-on")
		b.ReportMetric(float64(ft.NumSwitches()), "switches-total")
	}
}

func BenchmarkFig05EquivalentRequests(b *testing.B) {
	omegas := []float64{4e-3, 12e-3, 24e-3}
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig05EquivalentCCDF(omegas)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[1].VPR1e*100, "pct-vp-r1e@12ms")
		b.ReportMetric(pts[1].VPR3e*100, "pct-vp-r3e@12ms")
	}
}

// Package eprons is a from-scratch Go reproduction of "Joint Server and
// Network Energy Saving in Data Centers for Latency-Sensitive
// Applications" (Zhou et al., IPDPS 2018): the EPRONS framework that
// jointly minimizes data-center network and server power under
// tail-latency SLAs.
//
// The repository layout:
//
//   - internal/core — the joint planner (scale-factor-K search) and full
//     system runner (the paper's contribution);
//   - internal/consolidate, lp, milp — latency-aware traffic consolidation
//     (paper eq. 2–9) with an in-repo simplex/branch-and-bound solver;
//   - internal/dvfs, server — EPRONS-Server and the Rubik/Rubik+/
//     TimeTrader/MaxFreq baselines over a DVFS server simulator;
//   - internal/netsim, fattree, topology — a packet-level fat-tree network
//     simulator replacing the paper's MiniNet emulation;
//   - internal/experiments — regenerates every figure of the evaluation;
//     see bench_test.go and the cmd/ tools.
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package eprons
